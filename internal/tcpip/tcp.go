package tcpip

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// TCP implementation notes. This is a deliberately compact but real
// TCP: three-way handshake, cumulative ACKs, MSS segmentation, peer
// window respect, exponential-backoff retransmission, graceful FIN
// teardown in both directions, RST on refusal and abort, TIME_WAIT,
// and bounded out-of-order reassembly (segments ahead of the expected
// sequence wait for the gap to fill instead of forcing retransmission).
//
// Two listen models coexist, because the paper's two platforms differ
// exactly here (§5.3):
//
//   - Listener (BSD style): a factory socket; each SYN conjures a new
//     connection delivered through Accept.
//   - ListenOne (Dynamic C style): "the socket bound to the port also
//     handles the request, so each connection is required to have a
//     corresponding call to tcp_listen". A one-shot TCB that becomes
//     the connection itself.

type tcpState int

// TCP connection states (RFC 793 names).
const (
	stateClosed tcpState = iota
	stateListen
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateClosing
	stateLastAck
	stateTimeWait
)

var stateNames = map[tcpState]string{
	stateClosed: "CLOSED", stateListen: "LISTEN", stateSynSent: "SYN_SENT",
	stateSynRcvd: "SYN_RCVD", stateEstablished: "ESTABLISHED",
	stateFinWait1: "FIN_WAIT_1", stateFinWait2: "FIN_WAIT_2",
	stateCloseWait: "CLOSE_WAIT", stateClosing: "CLOSING",
	stateLastAck: "LAST_ACK", stateTimeWait: "TIME_WAIT",
}

func (s tcpState) String() string { return stateNames[s] }

// TCP header flags.
const (
	flagFIN = 1 << iota
	flagSYN
	flagRST
	flagPSH
	flagACK
)

// Tuning constants.
const (
	tcpMSS         = 1200
	maxInFlight    = 16 * 1024
	sndBufLimit    = 64 * 1024
	initialRTO     = 200 * time.Millisecond
	maxRTO         = 3 * time.Second
	maxRetries     = 8
	maxOOOSegments = 64
	timeWaitDelay  = 200 * time.Millisecond
	tcpHeaderLen   = 20
	advertisedWnd  = 0xffff
)

// Errors surfaced by TCP operations.
var (
	ErrConnRefused = errors.New("tcpip: connection refused")
	ErrConnReset   = errors.New("tcpip: connection reset by peer")
	ErrTimeout     = errors.New("tcpip: operation timed out")
	ErrConnClosed  = errors.New("tcpip: connection closed")
)

type tcpKey struct {
	remoteIP   Addr
	remotePort uint16
	localPort  uint16
}

type tcpSegment struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            uint8
	window           uint16
	payload          []byte
}

func marshalTCP(src, dst Addr, seg tcpSegment) []byte {
	b := make([]byte, tcpHeaderLen+len(seg.payload))
	put16(b[0:], seg.srcPort)
	put16(b[2:], seg.dstPort)
	put32(b[4:], seg.seq)
	put32(b[8:], seg.ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = seg.flags
	put16(b[14:], seg.window)
	copy(b[tcpHeaderLen:], seg.payload)
	put16(b[16:], pseudoChecksum(ProtoTCP, src, dst, b))
	return b
}

// appendTCPIP marshals the IP header and the TCP segment into buf's
// backing array in a single pass — the per-segment fast path replacing
// the marshalTCP-then-marshalIP pair, which allocated twice and copied
// the payload twice. The buffer is reused when its capacity suffices;
// every header byte is written explicitly, so stale contents cannot
// leak through. The returned packet is only valid until buf's next
// reuse: transmission must copy (Port.Send does, at the wire
// boundary) before the caller marshals again.
func appendTCPIP(buf []byte, src, dst Addr, seg tcpSegment) []byte {
	total := ipHeaderLen + tcpHeaderLen + len(seg.payload)
	if cap(buf) < total {
		buf = make([]byte, total)
	} else {
		buf = buf[:total]
	}
	ip := buf[:ipHeaderLen]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	put16(ip[2:], uint16(total))
	put16(ip[4:], 0) // identification
	put16(ip[6:], 0) // flags / fragment offset
	ip[8] = 64       // TTL, as sendIP uses
	ip[9] = ProtoTCP
	put16(ip[10:], 0)
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	put16(ip[10:], checksum(ip))

	t := buf[ipHeaderLen:]
	put16(t[0:], seg.srcPort)
	put16(t[2:], seg.dstPort)
	put32(t[4:], seg.seq)
	put32(t[8:], seg.ack)
	t[12] = 5 << 4
	t[13] = seg.flags
	put16(t[14:], seg.window)
	put16(t[16:], 0) // checksum, filled below
	put16(t[18:], 0) // urgent pointer
	copy(t[tcpHeaderLen:], seg.payload)
	put16(t[16:], pseudoChecksum(ProtoTCP, src, dst, t))
	return buf
}

func parseTCP(b []byte) (tcpSegment, bool) {
	if len(b) < tcpHeaderLen {
		return tcpSegment{}, false
	}
	off := int(b[12]>>4) * 4
	if off < tcpHeaderLen || off > len(b) {
		return tcpSegment{}, false
	}
	return tcpSegment{
		srcPort: be16(b[0:]), dstPort: be16(b[2:]),
		seq: be32(b[4:]), ack: be32(b[8:]),
		flags: b[13] & 0x1f, window: be16(b[14:]),
		payload: b[off:],
	}, true
}

// Sequence-space comparisons (mod 2^32).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// TCB is a TCP connection (or a Dynamic-C-style listening socket that
// will become one). It implements io.ReadWriteCloser once established.
type TCB struct {
	stack *Stack
	mu    sync.Mutex
	cond  *sync.Cond

	state      tcpState
	localPort  uint16
	remotePort uint16
	remoteIP   Addr

	iss, irs uint32
	sndUna   uint32 // oldest unacknowledged
	sndNxt   uint32 // next to send
	rcvNxt   uint32 // next expected
	peerWnd  uint16

	// sndBuf holds unacked+unsent data; index sndStart is seq sndUna.
	// ACKs advance sndStart instead of re-slicing (re-slicing the front
	// off makes every later append reallocate); the buffer resets when
	// fully acked and compacts in Write if the tail would otherwise
	// grow past its capacity.
	sndBuf    []byte
	sndStart  int
	sndClosed bool // Close called; FIN queued behind data
	finSent   bool
	finSeq    uint32

	// rcvBuf holds in-order received data; index rcvStart is the next
	// unread byte. While rcvPinned, a Peek caller holds views into
	// rcvBuf (and may be decrypting in place), so the buffer must not
	// move: arrivals divert to rcvPending and merge back when the
	// reader unpins (Discard, or the next Peek).
	rcvBuf     []byte
	rcvStart   int
	rcvPinned  bool
	rcvPending []byte
	rcvClosed  bool // peer FIN consumed
	// ooo holds out-of-order segments (seq -> payload) awaiting the
	// gap to fill; bounded to keep a hostile peer from ballooning it.
	ooo map[uint32][]byte

	err error

	rtoArmed    bool
	rtoDeadline time.Time
	rto         time.Duration
	retries     int
	timeWaitAt  time.Time

	// RTT sampling, Karn's algorithm: one timed sequence number at a
	// time, and the pending sample is invalidated on retransmission
	// (an ACK after a retransmit is ambiguous about which copy it
	// answers).
	rttValid bool
	rttSeq   uint32 // sample completes when sndUna passes this
	rttAt    time.Time

	// onEstablished fires when SYN_RCVD completes (listener delivery).
	onEstablished func(*TCB)

	// txScratch is the reusable segment marshal buffer (guarded by
	// t.mu, like every send call); Port.Send copies at the wire
	// boundary, so reuse on the next segment is safe.
	txScratch []byte
}

func newTCB(s *Stack) *TCB {
	t := &TCB{stack: s, rto: initialRTO, peerWnd: advertisedWnd}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// State returns the connection state name (for diagnostics and tests).
func (t *TCB) State() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state.String()
}

// LocalPort returns the local port number.
func (t *TCB) LocalPort() uint16 { return t.localPort }

// RemoteAddr returns the peer address and port (zero until bound).
func (t *TCB) RemoteAddr() (Addr, uint16) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.remoteIP, t.remotePort
}

// waitCond blocks until pred() holds, the connection errors, or the
// deadline passes. Called with t.mu held; returns with t.mu held.
func (t *TCB) waitCond(deadline time.Time, pred func() bool) error {
	for !pred() {
		if t.err != nil {
			return t.err
		}
		now := time.Now()
		if !deadline.IsZero() && now.After(deadline) {
			return ErrTimeout
		}
		var timer *time.Timer
		if !deadline.IsZero() {
			timer = time.AfterFunc(deadline.Sub(now), t.cond.Broadcast)
		}
		t.cond.Wait()
		if timer != nil {
			timer.Stop()
		}
	}
	return nil
}

// sndLen returns the bytes pending in the send buffer. t.mu held.
func (t *TCB) sndLen() int { return len(t.sndBuf) - t.sndStart }

// rcvLen returns the readable bytes in the receive buffer (excluding
// any pinned-aside pending bytes). t.mu held.
func (t *TCB) rcvLen() int { return len(t.rcvBuf) - t.rcvStart }

// mergePendingLocked folds rcvPending back into rcvBuf and resets a
// fully-drained buffer so its capacity is reused. No-op while pinned —
// the whole point of rcvPending is that rcvBuf cannot move then.
// t.mu held.
func (t *TCB) mergePendingLocked() {
	if t.rcvPinned {
		return
	}
	if t.rcvStart == len(t.rcvBuf) && t.rcvStart > 0 {
		t.rcvBuf = t.rcvBuf[:0]
		t.rcvStart = 0
	}
	if len(t.rcvPending) > 0 {
		t.rcvBuf = append(t.rcvBuf, t.rcvPending...)
		t.rcvPending = t.rcvPending[:0]
	}
}

// appendRcvLocked adds in-order payload bytes for the reader,
// diverting to the pending buffer while a Peek view pins rcvBuf.
// t.mu held.
func (t *TCB) appendRcvLocked(payload []byte) {
	if t.rcvPinned {
		t.rcvPending = append(t.rcvPending, payload...)
	} else {
		t.rcvBuf = append(t.rcvBuf, payload...)
	}
}

// send transmits one segment for this connection. Called with t.mu held.
func (t *TCB) send(seg tcpSegment) {
	seg.srcPort = t.localPort
	seg.dstPort = t.remotePort
	seg.window = advertisedWnd
	t.txScratch = appendTCPIP(t.txScratch, t.stack.ip, t.remoteIP, seg)
	t.stack.metrics.segsSent.Inc()
	t.stack.mu.Lock()
	t.stack.sendIPRaw(t.remoteIP, t.txScratch)
	t.stack.mu.Unlock()
}

func (t *TCB) armRTO() {
	t.rtoArmed = true
	t.rtoDeadline = time.Now().Add(t.rto)
}

// transmit pushes out as much pending data as window allows, then the
// FIN if Close has drained the buffer. Called with t.mu held.
func (t *TCB) transmit() {
	switch t.state {
	case stateEstablished, stateCloseWait, stateFinWait1, stateClosing, stateLastAck:
	default:
		return
	}
	wnd := int(t.peerWnd)
	if wnd > maxInFlight {
		wnd = maxInFlight
	}
	sent := int(t.sndNxt - t.sndUna)
	if t.finSent {
		sent-- // FIN occupies one phantom byte past the buffer
	}
	for sent < t.sndLen() && sent < wnd {
		n := t.sndLen() - sent
		if n > tcpMSS {
			n = tcpMSS
		}
		if n > wnd-sent {
			n = wnd - sent
		}
		t.send(tcpSegment{
			seq: t.sndUna + uint32(sent), ack: t.rcvNxt,
			flags:   flagACK | flagPSH,
			payload: t.sndBuf[t.sndStart+sent : t.sndStart+sent+n],
		})
		sent += n
		t.sndNxt = t.sndUna + uint32(sent)
		if !t.rttValid {
			t.rttValid = true
			t.rttSeq = t.sndNxt
			t.rttAt = time.Now()
		}
		t.armRTO()
	}
	if t.sndClosed && !t.finSent && sent == t.sndLen() {
		t.finSeq = t.sndUna + uint32(t.sndLen())
		t.send(tcpSegment{seq: t.finSeq, ack: t.rcvNxt, flags: flagFIN | flagACK})
		t.finSent = true
		t.sndNxt = t.finSeq + 1
		switch t.state {
		case stateEstablished:
			t.state = stateFinWait1
		case stateCloseWait:
			t.state = stateLastAck
		}
		t.armRTO()
	}
}

// tick is called periodically by the stack's timer loop.
func (t *TCB) tick(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == stateTimeWait && now.After(t.timeWaitAt) {
		t.removeLocked()
		t.state = stateClosed
		t.cond.Broadcast()
		return
	}
	if !t.rtoArmed || now.Before(t.rtoDeadline) {
		return
	}
	outstanding := t.sndNxt != t.sndUna
	if !outstanding {
		t.rtoArmed = false
		return
	}
	t.retries++
	if t.retries > maxRetries {
		t.abortLocked(ErrTimeout, true)
		return
	}
	t.rto *= 2
	if t.rto > maxRTO {
		t.rto = maxRTO
	}
	t.rttValid = false // Karn: the next ACK is ambiguous, discard sample
	t.stack.metrics.retransmits.Inc()
	t.stack.trace.Emit("tcp", "retransmit",
		"local", t.localPort, "remote", t.remotePort,
		"state", t.state.String(), "seq", t.sndUna, "try", t.retries,
		"rto_ms", t.rto.Milliseconds())
	// Retransmit from sndUna: SYN, data, or FIN depending on phase.
	switch t.state {
	case stateSynSent:
		t.send(tcpSegment{seq: t.iss, flags: flagSYN})
	case stateSynRcvd:
		t.send(tcpSegment{seq: t.iss, ack: t.rcvNxt, flags: flagSYN | flagACK})
	default:
		if t.sndLen() > 0 {
			n := t.sndLen()
			if n > tcpMSS {
				n = tcpMSS
			}
			t.send(tcpSegment{
				seq: t.sndUna, ack: t.rcvNxt,
				flags: flagACK | flagPSH, payload: t.sndBuf[t.sndStart : t.sndStart+n],
			})
		} else if t.finSent {
			t.send(tcpSegment{seq: t.finSeq, ack: t.rcvNxt, flags: flagFIN | flagACK})
		}
	}
	t.armRTO()
}

// removeLocked unregisters the TCB from the stack. t.mu held.
// Lock order is always t.mu → s.mu; nothing may take t.mu under s.mu.
func (t *TCB) removeLocked() {
	key := tcpKey{t.remoteIP, t.remotePort, t.localPort}
	t.stack.mu.Lock()
	if t.stack.tcbs[key] == t {
		delete(t.stack.tcbs, key)
	}
	// A LISTEN-state Dynamic-C socket lives in dcListen instead.
	if ls := t.stack.dcListen[t.localPort]; len(ls) > 0 {
		kept := ls[:0]
		for _, other := range ls {
			if other != t {
				kept = append(kept, other)
			}
		}
		if len(kept) == 0 {
			delete(t.stack.dcListen, t.localPort)
		} else {
			t.stack.dcListen[t.localPort] = kept
		}
	}
	t.stack.mu.Unlock()
}

// Abort resets the connection immediately (RST), discarding queued data.
func (t *TCB) Abort() { t.abort(ErrConnClosed) }

// abort tears the connection down with an error, sending RST if asked.
func (t *TCB) abort(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.abortLocked(err, true)
}

func (t *TCB) abortLocked(err error, sendRST bool) {
	if t.state == stateClosed {
		return
	}
	if sendRST && t.state != stateListen && t.remotePort != 0 {
		t.send(tcpSegment{seq: t.sndNxt, ack: t.rcvNxt, flags: flagRST | flagACK})
	}
	t.err = err
	t.state = stateClosed
	t.rtoArmed = false
	t.removeLocked()
	t.cond.Broadcast()
}

// handleSegment runs the state machine for one incoming segment.
func (t *TCB) handleSegment(seg tcpSegment) {
	t.mu.Lock()
	defer t.mu.Unlock()

	if seg.flags&flagRST != 0 {
		switch t.state {
		case stateSynSent:
			if seg.flags&flagACK != 0 && seg.ack == t.iss+1 {
				t.abortLocked(ErrConnRefused, false)
			}
		case stateClosed, stateListen:
		default:
			if seqLEQ(t.rcvNxt, seg.seq) {
				t.abortLocked(ErrConnReset, false)
			}
		}
		return
	}

	switch t.state {
	case stateSynSent:
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK && seg.ack == t.iss+1 {
			t.irs = seg.seq
			t.rcvNxt = seg.seq + 1
			t.sndUna = seg.ack
			t.sndNxt = seg.ack
			t.peerWnd = seg.window
			t.state = stateEstablished
			t.rtoArmed = false
			t.retries = 0
			t.rto = initialRTO
			t.send(tcpSegment{seq: t.sndNxt, ack: t.rcvNxt, flags: flagACK})
			t.cond.Broadcast()
		}
		return

	case stateSynRcvd:
		if seg.flags&flagSYN != 0 {
			// Duplicate SYN: our SYN-ACK was lost; resend.
			t.send(tcpSegment{seq: t.iss, ack: t.rcvNxt, flags: flagSYN | flagACK})
			return
		}
		if seg.flags&flagACK != 0 && seg.ack == t.iss+1 {
			t.sndUna = seg.ack
			t.sndNxt = seg.ack
			t.peerWnd = seg.window
			t.state = stateEstablished
			t.rtoArmed = false
			t.retries = 0
			t.rto = initialRTO
			if cb := t.onEstablished; cb != nil {
				t.onEstablished = nil
				t.mu.Unlock()
				cb(t)
				t.mu.Lock()
			}
			t.cond.Broadcast()
			// Fall through: segment may carry data too.
		} else {
			return
		}

	case stateClosed, stateListen:
		return
	}

	// Data-phase states from here on.
	t.peerWnd = seg.window

	if seg.flags&flagACK != 0 && seqLT(t.sndUna, seg.ack) && seqLEQ(seg.ack, t.sndNxt) {
		advance := seg.ack - t.sndUna
		dataAcked := int(advance)
		if dataAcked > t.sndLen() {
			dataAcked = t.sndLen() // FIN phantom byte
		}
		t.sndStart += dataAcked
		if t.sndStart == len(t.sndBuf) {
			t.sndBuf = t.sndBuf[:0]
			t.sndStart = 0
		}
		t.sndUna = seg.ack
		t.retries = 0
		t.rto = initialRTO
		if t.rttValid && seqLEQ(t.rttSeq, seg.ack) {
			rtt := time.Since(t.rttAt)
			t.rttValid = false
			t.stack.metrics.rttUs.Observe(uint64(rtt.Microseconds()))
			// Guarded: Emit boxes its arguments before the nil-receiver
			// check, and this fires on every timed ACK — the one trace
			// call on the steady-state receive path.
			if t.stack.trace != nil {
				t.stack.trace.Emit("tcp", "rtt_sample",
					"local", t.localPort, "remote", t.remotePort,
					"rtt_us", rtt.Microseconds())
			}
		}
		if t.sndUna == t.sndNxt {
			t.rtoArmed = false
		} else {
			t.armRTO()
		}
		if t.finSent && seg.ack == t.finSeq+1 {
			switch t.state {
			case stateFinWait1:
				t.state = stateFinWait2
			case stateClosing:
				t.enterTimeWait()
			case stateLastAck:
				t.state = stateClosed
				t.removeLocked()
			}
		}
		t.cond.Broadcast()
	}

	if len(seg.payload) > 0 {
		switch t.state {
		case stateEstablished, stateFinWait1, stateFinWait2:
			switch {
			case seg.seq == t.rcvNxt:
				t.appendRcvLocked(seg.payload)
				t.rcvNxt += uint32(len(seg.payload))
				t.drainOOO()
				t.cond.Broadcast()
			case seqLT(t.rcvNxt, seg.seq):
				// Future segment: stash for reassembly (bounded).
				if t.ooo == nil {
					t.ooo = map[uint32][]byte{}
				}
				if len(t.ooo) < maxOOOSegments {
					if _, dup := t.ooo[seg.seq]; !dup {
						t.ooo[seg.seq] = append([]byte(nil), seg.payload...)
					}
				}
			}
			// ACK everything: in-order data advances rcvNxt; dups and
			// gaps produce the duplicate ACKs that prod the sender.
			t.send(tcpSegment{seq: t.sndNxt, ack: t.rcvNxt, flags: flagACK})
		default:
			t.send(tcpSegment{seq: t.sndNxt, ack: t.rcvNxt, flags: flagACK})
		}
	}

	if seg.flags&flagFIN != 0 {
		finSeq := seg.seq + uint32(len(seg.payload))
		if finSeq == t.rcvNxt {
			t.rcvNxt++
			t.rcvClosed = true
			t.send(tcpSegment{seq: t.sndNxt, ack: t.rcvNxt, flags: flagACK})
			switch t.state {
			case stateEstablished:
				t.state = stateCloseWait
			case stateFinWait1:
				// Our FIN not yet acked: simultaneous close.
				t.state = stateClosing
			case stateFinWait2:
				t.enterTimeWait()
			}
			t.cond.Broadcast()
		} else if seqLT(finSeq, t.rcvNxt) {
			// Duplicate FIN: re-ACK.
			t.send(tcpSegment{seq: t.sndNxt, ack: t.rcvNxt, flags: flagACK})
		}
	}

	t.transmit()
}

// drainOOO appends any stashed segments that have become contiguous.
// Called with t.mu held after rcvNxt advances.
func (t *TCB) drainOOO() {
	for {
		payload, ok := t.ooo[t.rcvNxt]
		if !ok {
			// Also discard anything now wholly in the past.
			for seq := range t.ooo {
				if seqLT(seq, t.rcvNxt) {
					delete(t.ooo, seq)
				}
			}
			return
		}
		delete(t.ooo, t.rcvNxt)
		t.appendRcvLocked(payload)
		t.rcvNxt += uint32(len(payload))
	}
}

func (t *TCB) enterTimeWait() {
	t.state = stateTimeWait
	t.rtoArmed = false
	t.timeWaitAt = time.Now().Add(timeWaitDelay)
}

// --- Public connection API ------------------------------------------------

// Read fills buf with received data, blocking until at least one byte,
// EOF (peer FIN), or error.
func (t *TCB) Read(buf []byte) (int, error) {
	return t.ReadDeadline(buf, time.Time{})
}

// ReadDeadline is Read with an absolute deadline (zero = none).
func (t *TCB) ReadDeadline(buf []byte, deadline time.Time) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mergePendingLocked()
	err := t.waitCond(deadline, func() bool {
		return t.rcvLen() > 0 || t.rcvClosed
	})
	if t.rcvLen() == 0 {
		if err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	n := copy(buf, t.rcvBuf[t.rcvStart:])
	t.rcvStart += n
	t.mergePendingLocked()
	return n, nil
}

// Avail returns the number of buffered received bytes (non-blocking).
func (t *TCB) Avail() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rcvLen() + len(t.rcvPending)
}

// Peek blocks until at least n received bytes are buffered, then
// returns all buffered bytes as a view into the receive buffer — no
// copy. The caller owns the view (and may mutate it, e.g. decrypt in
// place) until its matching Discard or the next Peek, either of which
// invalidates it. While a view is outstanding the buffer is pinned:
// concurrently arriving segments divert to a side buffer so the viewed
// memory cannot move under the caller. On EOF with no buffered data it
// returns io.EOF; with some-but-fewer than n bytes, io.ErrUnexpectedEOF
// (the io.ReadFull convention, which the record layer's framing
// expects).
func (t *TCB) Peek(n int, deadline time.Time) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rcvPinned = false // this call invalidates any previous view
	t.mergePendingLocked()
	err := t.waitCond(deadline, func() bool {
		t.mergePendingLocked()
		return t.rcvLen() >= n || t.rcvClosed
	})
	if t.rcvLen() < n {
		if err != nil {
			return nil, err
		}
		if t.rcvLen() == 0 {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	t.rcvPinned = true
	return t.rcvBuf[t.rcvStart:], nil
}

// Discard consumes n bytes from the front of the receive buffer and
// releases the pin taken by Peek, merging any bytes that arrived while
// the buffer was pinned. n is clamped to the buffered amount.
func (t *TCB) Discard(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rcvStart += n
	if t.rcvStart > len(t.rcvBuf) {
		t.rcvStart = len(t.rcvBuf)
	}
	t.rcvPinned = false
	t.mergePendingLocked()
}

// Write queues data for transmission, blocking while the send buffer
// is full. It returns early with the connection's error if it dies.
func (t *TCB) Write(data []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	written := 0
	for written < len(data) {
		if t.err != nil {
			return written, t.err
		}
		if t.sndClosed {
			return written, ErrConnClosed
		}
		switch t.state {
		case stateEstablished, stateCloseWait:
		default:
			return written, ErrConnClosed
		}
		space := sndBufLimit - t.sndLen()
		if space <= 0 {
			if err := t.waitCond(time.Now().Add(10*time.Second), func() bool {
				return t.sndLen() < sndBufLimit || t.err != nil || t.sndClosed
			}); err != nil {
				return written, err
			}
			continue
		}
		n := len(data) - written
		if n > space {
			n = space
		}
		// Compact acked-but-unreclaimed front space instead of growing:
		// nothing holds views into sndBuf (send copies synchronously),
		// so sliding the pending bytes down is always safe and keeps the
		// buffer's capacity bounded by the send-buffer limit.
		if t.sndStart > 0 && len(t.sndBuf)+n > cap(t.sndBuf) {
			kept := copy(t.sndBuf, t.sndBuf[t.sndStart:])
			t.sndBuf = t.sndBuf[:kept]
			t.sndStart = 0
		}
		t.sndBuf = append(t.sndBuf, data[written:written+n]...)
		written += n
		t.transmit()
	}
	return written, nil
}

// Close performs a graceful shutdown: queued data is sent, then FIN.
func (t *TCB) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sndClosed || t.state == stateClosed {
		return nil
	}
	switch t.state {
	case stateSynSent, stateSynRcvd, stateListen:
		t.abortLocked(ErrConnClosed, t.state == stateSynRcvd)
		return nil
	}
	t.sndClosed = true
	t.transmit()
	t.cond.Broadcast()
	return nil
}

// CloseWrite half-closes the connection — shutdown(SHUT_WR): FIN goes
// out and further Writes fail, but received data keeps draining until
// the peer's own FIN. Close already has exactly these semantics (it
// never discards undelivered receive data), so this is a documented
// alias for callers that want the intent explicit.
func (t *TCB) CloseWrite() error { return t.Close() }

// Established reports whether the connection is usable for data.
func (t *TCB) Established() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state == stateEstablished || t.state == stateCloseWait
}

// Alive reports whether the connection still exists in any live state
// (the Dynamic C tcp_tick(&sock) truthiness).
func (t *TCB) Alive() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case stateClosed:
		return false
	case stateTimeWait:
		return false
	}
	return true
}

// Err returns the terminal error, if any.
func (t *TCB) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// WaitEstablished blocks until the handshake completes or fails.
func (t *TCB) WaitEstablished(timeout time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return t.waitCond(deadline, func() bool {
		return t.state == stateEstablished || t.state == stateCloseWait
	})
}

// WaitClosed blocks until the connection fully drains and closes.
func (t *TCB) WaitClosed(timeout time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	err := t.waitCond(deadline, func() bool {
		return t.state == stateClosed || t.state == stateTimeWait
	})
	if err == ErrTimeout {
		return err
	}
	return nil
}

// --- Connect (active open) -------------------------------------------------

// Connect opens a TCP connection to dst:port, blocking until the
// handshake completes or the timeout expires.
func (s *Stack) Connect(dst Addr, port uint16, timeout time.Duration) (*TCB, error) {
	t := newTCB(s)
	s.mu.Lock()
	local := s.ephemeralPort()
	if local == 0 {
		s.mu.Unlock()
		return nil, errors.New("tcpip: no free ephemeral ports")
	}
	t.localPort = local
	t.remoteIP = dst
	t.remotePort = port
	t.iss = s.isn.Uint32()
	t.sndUna = t.iss
	t.sndNxt = t.iss + 1
	t.state = stateSynSent
	s.tcbs[tcpKey{dst, port, local}] = t
	s.mu.Unlock()

	t.mu.Lock()
	t.send(tcpSegment{seq: t.iss, flags: flagSYN})
	t.armRTO()
	deadline := time.Now().Add(timeout)
	// CLOSE_WAIT also means the handshake completed: a server that
	// accepts and immediately closes (e.g. admission refusal) can move
	// the TCB ESTABLISHED -> CLOSE_WAIT before this goroutine wakes.
	err := t.waitCond(deadline, func() bool {
		return t.state == stateEstablished || t.state == stateCloseWait
	})
	t.mu.Unlock()
	if err != nil {
		t.abort(err)
		return nil, fmt.Errorf("tcpip: connect %s:%d: %w", dst, port, err)
	}
	return t, nil
}

// --- BSD-style listener -----------------------------------------------------

// Listener is a BSD-style passive socket; Accept yields established
// connections.
type Listener struct {
	stack    *Stack
	port     uint16
	backlog  int
	acceptCh chan *TCB
	mu       sync.Mutex
	pending  int
	closed   bool
}

// Listen binds a BSD-style listener. backlog bounds connections that
// completed the handshake but have not been accepted (LISTENQ).
func (s *Stack) Listen(port uint16, backlog int) (*Listener, error) {
	if backlog < 1 {
		backlog = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.listeners[port]; ok {
		return nil, fmt.Errorf("%w: tcp/%d", ErrPortInUse, port)
	}
	if len(s.dcListen[port]) > 0 {
		return nil, fmt.Errorf("%w: tcp/%d (DC listener present)", ErrPortInUse, port)
	}
	l := &Listener{stack: s, port: port, backlog: backlog,
		acceptCh: make(chan *TCB, backlog)}
	s.listeners[port] = l
	return l, nil
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accept blocks for the next established connection.
func (l *Listener) Accept(timeout time.Duration) (*TCB, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		timer = time.After(timeout)
	}
	select {
	case t, ok := <-l.acceptCh:
		if !ok {
			return nil, ErrConnClosed
		}
		l.mu.Lock()
		l.pending--
		l.mu.Unlock()
		return t, nil
	case <-timer:
		return nil, ErrTimeout
	}
}

// deliver hands an established connection to Accept. Called by the
// TCB state machine with no TCB lock held; the pending counter
// guarantees channel capacity.
func (l *Listener) deliver(conn *TCB) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		conn.abort(ErrConnClosed)
		return
	}
	l.acceptCh <- conn
	l.mu.Unlock()
}

// Close stops listening. Queued-but-unaccepted connections are reset.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	l.stack.mu.Lock()
	if l.stack.listeners[l.port] == l {
		delete(l.stack.listeners, l.port)
	}
	l.stack.mu.Unlock()
	close(l.acceptCh)
	for t := range l.acceptCh {
		t.abort(ErrConnClosed)
	}
}

// --- Dynamic-C-style one-shot listen ----------------------------------------

// ListenOne registers a Dynamic-C-style listening socket: the returned
// TCB itself becomes the connection when a SYN arrives (tcp_listen
// semantics). Multiple ListenOne sockets may share a port; an incoming
// SYN claims the oldest. If no socket is listening, the SYN is refused
// with RST — this is what enforces the three-connection limit of the
// paper's Fig. 3 server.
func (s *Stack) ListenOne(port uint16) (*TCB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.listeners[port]; ok {
		return nil, fmt.Errorf("%w: tcp/%d (BSD listener present)", ErrPortInUse, port)
	}
	t := newTCB(s)
	t.localPort = port
	t.state = stateListen
	s.dcListen[port] = append(s.dcListen[port], t)
	return t, nil
}

// --- Stack-level TCP demux ----------------------------------------------------

// handleTCPView verifies and demuxes one TCP segment arriving as a
// view into the receive slab. The header is read in place through
// TCPFrame; the segment's payload slice still aliases the slab, so
// everything downstream must copy what it keeps before returning
// (handleSegment's receive-buffer append does exactly that).
func (s *Stack) handleTCPView(src Addr, b []byte) {
	// The frame was addressed to us (handleFrameView checked), so the
	// pseudo-header destination is our own address.
	if pseudoChecksum(ProtoTCP, src, s.ip, b) != 0 {
		s.metrics.checksumDrops.Inc()
		s.trace.Emit("tcp", "checksum_drop", "src", src.String(), "len", len(b))
		return
	}
	f, err := ParseTCPFrame(b)
	if err != nil {
		return
	}
	s.demuxTCP(src, f.segment())
}

// demuxTCP routes a verified segment to its TCB, matching SYNs against
// listeners and answering strays with RST.
func (s *Stack) demuxTCP(src Addr, seg tcpSegment) {
	s.metrics.segsRcvd.Inc()
	key := tcpKey{src, seg.srcPort, seg.dstPort}
	s.mu.Lock()
	t, found := s.tcbs[key]
	var fresh bool
	if !found && seg.flags&flagSYN != 0 && seg.flags&flagACK == 0 {
		t, fresh = s.matchSYNLocked(src, seg, key)
	}
	s.mu.Unlock()
	if t != nil && fresh {
		// Bind outside s.mu (lock order: t.mu → s.mu only). If the
		// socket was closed in the meantime, refuse the connection.
		if !t.bindPassive(src, seg) {
			s.mu.Lock()
			if s.tcbs[key] == t {
				delete(s.tcbs, key)
			}
			s.mu.Unlock()
			s.sendRST(src, seg)
			return
		}
	}
	if t != nil {
		t.handleSegment(seg)
		return
	}
	if seg.flags&flagRST == 0 {
		s.sendRST(src, seg)
	}
}

// matchSYNLocked matches an incoming SYN against DC one-shot sockets
// first, then BSD listeners, registering the owning TCB in the
// connection table. It does NOT touch t.mu. Called with s.mu held.
func (s *Stack) matchSYNLocked(src Addr, seg tcpSegment, key tcpKey) (*TCB, bool) {
	port := seg.dstPort
	if ls := s.dcListen[port]; len(ls) > 0 {
		t := ls[0]
		s.dcListen[port] = ls[1:]
		if len(s.dcListen[port]) == 0 {
			delete(s.dcListen, port)
		}
		s.tcbs[key] = t
		return t, true
	}
	if l, ok := s.listeners[port]; ok {
		l.mu.Lock()
		full := l.closed || l.pending >= l.backlog
		if !full {
			l.pending++
		}
		l.mu.Unlock()
		if full {
			return nil, false
		}
		t := newTCB(s)
		t.localPort = port
		t.onEstablished = l.deliver
		s.tcbs[key] = t
		return t, true
	}
	return nil, false
}

// bindPassive points a TCB at the SYN's originator and moves it to
// SYN_RCVD. It reports false if the socket was concurrently closed.
// The SYN-ACK itself is sent by handleSegment, which processes this
// same SYN next and hits the SYN_RCVD duplicate-SYN path.
func (t *TCB) bindPassive(src Addr, seg tcpSegment) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	// A DC socket must still be listening; a fresh BSD-side TCB is in
	// its virgin zero state. Anything else means a racing Close/abort.
	if t.err != nil || (t.state != stateListen && t.state != stateClosed) ||
		t.remotePort != 0 {
		return false
	}
	t.remoteIP = src
	t.remotePort = seg.srcPort
	t.irs = seg.seq
	t.rcvNxt = seg.seq + 1
	t.iss = t.stack.isn.Uint32()
	t.sndUna = t.iss
	t.sndNxt = t.iss + 1
	t.peerWnd = seg.window
	t.state = stateSynRcvd
	t.rto = initialRTO
	t.rtoArmed = true
	t.rtoDeadline = time.Now().Add(t.rto)
	return true
}

// sendRST answers an unmatched segment with a reset.
func (s *Stack) sendRST(dst Addr, seg tcpSegment) {
	var rst tcpSegment
	rst.srcPort = seg.dstPort
	rst.dstPort = seg.srcPort
	rst.flags = flagRST | flagACK
	if seg.flags&flagACK != 0 {
		rst.seq = seg.ack
	}
	adv := uint32(len(seg.payload))
	if seg.flags&flagSYN != 0 {
		adv++
	}
	if seg.flags&flagFIN != 0 {
		adv++
	}
	rst.ack = seg.seq + adv
	raw := marshalTCP(s.ip, dst, rst)
	s.metrics.segsSent.Inc()
	s.mu.Lock()
	s.sendIP(dst, ProtoTCP, raw)
	s.mu.Unlock()
}
