package tcpip

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/netsim"
)

// faultTransfer pushes size patterned bytes from stacks[1] to a client
// on stacks[0] with plan active during the data phase (installed only
// after the handshake, like TestTCPBulkTransferWithLoss, so connection
// setup stays deterministic). Returns the receiving TCB and the bytes
// that arrived; the caller asserts integrity.
func faultTransfer(t *testing.T, hub *netsim.Hub, stacks []*Stack, size int, plan *netsim.FaultPlan) (*TCB, []byte) {
	t.Helper()
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i*13 + i>>8)
	}
	l, err := stacks[1].Listen(8080, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept(60 * time.Second)
			if err != nil {
				return
			}
			go func(c *TCB) {
				c.Write(want)
				c.Close()
			}(conn)
		}
	}()
	conn, err := stacks[0].Connect(stacks[1].Addr(), 8080, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	defer hub.SetFaultPlan(nil)
	var got bytes.Buffer
	buf := make([]byte, 8192)
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, err := conn.ReadDeadline(buf, deadline)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got.Len(), err)
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", got.Len(), size)
	}
	return conn, got.Bytes()
}

// TestTCPRetransmissionUnderReordering: bounded reordering on the wire
// must be absorbed by the reassembly queue — byte-exact delivery, and
// the out-of-order buffer fully drained once the stream ends.
func TestTCPRetransmissionUnderReordering(t *testing.T) {
	hub, stacks := testNet(t, 2)
	conn, _ := faultTransfer(t, hub, stacks, 64*1024, &netsim.FaultPlan{
		Seed: 42, ReorderPct: 25, ReorderDepth: 5,
	})
	conn.mu.Lock()
	oooLeft := len(conn.ooo)
	conn.mu.Unlock()
	if oooLeft != 0 {
		t.Errorf("ooo queue holds %d segments after EOF, want 0", oooLeft)
	}
	if st := hub.FaultStats(); st.Reordered == 0 {
		t.Error("fault plan never reordered a frame; test exercised nothing")
	}
}

// TestTCPNoDoubleDeliveryUnderDuplication: duplicated segments are
// old-ACK noise to the receiver; the byte stream must come out exactly
// once. bytes.Equal in faultTransfer catches both corruption and any
// double delivery (the stream would be longer than size).
func TestTCPNoDoubleDeliveryUnderDuplication(t *testing.T) {
	hub, stacks := testNet(t, 2)
	faultTransfer(t, hub, stacks, 64*1024, &netsim.FaultPlan{
		Seed: 43, DupPct: 40,
	})
	if st := hub.FaultStats(); st.Duplicated == 0 {
		t.Error("fault plan never duplicated a frame; test exercised nothing")
	}
}

// TestTCPRecoveryUnderCombinedFaults drives a transfer through burst
// loss, corruption (dropped at the IP checksum, so loss with extra
// steps), duplication and reordering at once — the full weather the
// chaos soak later relies on.
func TestTCPRecoveryUnderCombinedFaults(t *testing.T) {
	hub, stacks := testNet(t, 2)
	faultTransfer(t, hub, stacks, 32*1024, &netsim.FaultPlan{
		Seed:        44,
		LossGoodPct: 2, LossBadPct: 30, GoodToBadPct: 3, BadToGoodPct: 30,
		CorruptPct: 3, DupPct: 10, ReorderPct: 10, ReorderDepth: 4,
	})
	st := hub.FaultStats()
	if st.LostGood+st.LostBurst == 0 || st.Corrupted == 0 {
		t.Errorf("fault mix too quiet to test recovery: %+v", st)
	}
}

// TestTCPCloseWriteRequestResponse exercises shutdown(SHUT_WR) at the
// raw TCP level: FIN out, response still readable.
func TestTCPCloseWriteRequestResponse(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, err := stacks[1].Listen(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept(5 * time.Second)
		if err != nil {
			return
		}
		var req []byte
		buf := make([]byte, 256)
		for {
			n, err := conn.ReadDeadline(buf, time.Now().Add(5*time.Second))
			req = append(req, buf[:n]...)
			if err != nil {
				break
			}
		}
		conn.Write(append([]byte("echo:"), req...))
		conn.Close()
	}()
	cli, err := stacks[0].Connect(stacks[1].Addr(), 7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := cli.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("late")); err == nil {
		t.Error("write succeeded after CloseWrite")
	}
	var resp []byte
	buf := make([]byte, 64)
	for {
		n, err := cli.ReadDeadline(buf, time.Now().Add(5*time.Second))
		resp = append(resp, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if string(resp) != "echo:hi" {
		t.Errorf("response = %q", resp)
	}
}
