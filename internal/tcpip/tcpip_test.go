package tcpip

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/netsim"
)

// testNet builds a hub with n stacks at 10.0.0.1..n.
func testNet(t *testing.T, n int) (*netsim.Hub, []*Stack) {
	t.Helper()
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	stacks := make([]*Stack, n)
	for i := range stacks {
		s, err := NewStack(hub, IP4(10, 0, 0, byte(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		stacks[i] = s
	}
	return hub, stacks
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example: verify complement-sum-to-zero property.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	cs := checksum(data)
	withCS := append([]byte(nil), data...)
	withCS = append(withCS, byte(cs>>8), byte(cs))
	if checksum(withCS) != 0 {
		t.Errorf("checksum of data+checksum = %#x, want 0", checksum(withCS))
	}
	// Odd length.
	odd := []byte{0xab}
	if checksum(odd) != ^uint16(0xab00) {
		t.Errorf("odd-length checksum = %#x", checksum(odd))
	}
}

func TestIPRoundTrip(t *testing.T) {
	p := ipPacket{src: IP4(1, 2, 3, 4), dst: IP4(5, 6, 7, 8), proto: ProtoTCP, ttl: 64, payload: []byte("hello")}
	raw := marshalIP(p)
	got, err := parseIP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.src != p.src || got.dst != p.dst || got.proto != p.proto || !bytes.Equal(got.payload, p.payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestIPRejectsCorruption(t *testing.T) {
	raw := marshalIP(ipPacket{src: IP4(1, 2, 3, 4), dst: IP4(5, 6, 7, 8), proto: 6, ttl: 64, payload: []byte("x")})
	for _, i := range []int{0, 2, 9, 12, 16} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xff
		if _, err := parseIP(bad); err == nil {
			t.Errorf("corrupting byte %d went undetected", i)
		}
	}
	if _, err := parseIP(raw[:10]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTCPSegmentRoundTrip(t *testing.T) {
	seg := tcpSegment{srcPort: 1234, dstPort: 80, seq: 0xdeadbeef, ack: 0xcafebabe,
		flags: flagSYN | flagACK, window: 4096, payload: []byte("data")}
	raw := marshalTCP(IP4(1, 1, 1, 1), IP4(2, 2, 2, 2), seg)
	if pseudoChecksum(ProtoTCP, IP4(1, 1, 1, 1), IP4(2, 2, 2, 2), raw) != 0 {
		t.Error("checksum does not verify")
	}
	got, ok := parseTCP(raw)
	if !ok {
		t.Fatal("parse failed")
	}
	if got.srcPort != 1234 || got.dstPort != 80 || got.seq != 0xdeadbeef ||
		got.ack != 0xcafebabe || got.flags != flagSYN|flagACK || string(got.payload) != "data" {
		t.Errorf("round trip: %+v", got)
	}
}

func TestARPAndPing(t *testing.T) {
	_, stacks := testNet(t, 2)
	if err := stacks[0].Ping(stacks[1].Addr(), 2*time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Second ping uses the warmed ARP cache.
	if err := stacks[0].Ping(stacks[1].Addr(), 2*time.Second); err != nil {
		t.Fatalf("second ping: %v", err)
	}
}

func TestPingUnknownHostTimesOut(t *testing.T) {
	_, stacks := testNet(t, 1)
	err := stacks[0].Ping(IP4(10, 0, 0, 99), 200*time.Millisecond)
	if err == nil {
		t.Fatal("ping to absent host succeeded")
	}
}

func TestUDPExchange(t *testing.T) {
	_, stacks := testNet(t, 2)
	srv, err := stacks[1].ListenUDP(9999)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := stacks[0].ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.SendTo(stacks[1].Addr(), 9999, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	dg, err := srv.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Data) != "ping" || dg.Src != stacks[0].Addr() {
		t.Errorf("got %+v", dg)
	}
	// Reply path.
	if err := srv.SendTo(dg.Src, dg.SrcPort, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	back, err := cli.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Data) != "pong" {
		t.Errorf("reply = %q", back.Data)
	}
}

func TestUDPPortConflict(t *testing.T) {
	_, stacks := testNet(t, 1)
	if _, err := stacks[0].ListenUDP(53); err != nil {
		t.Fatal(err)
	}
	if _, err := stacks[0].ListenUDP(53); err == nil {
		t.Error("duplicate UDP bind accepted")
	}
}

func TestTCPConnectAcceptEcho(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, err := stacks[1].Listen(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept(2 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		conn.Write(buf[:n])
		conn.Close()
	}()
	conn, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := conn.Write([]byte("echo me")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.ReadDeadline(buf, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "echo me" {
		t.Errorf("echo = %q", buf[:n])
	}
	conn.Close()
}

func TestTCPConnectionRefused(t *testing.T) {
	_, stacks := testNet(t, 2)
	_, err := stacks[0].Connect(stacks[1].Addr(), 81, 2*time.Second)
	if err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}

func TestTCPBulkTransfer(t *testing.T) {
	_, stacks := testNet(t, 2)
	const size = 256 * 1024
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i * 31)
	}
	l, err := stacks[1].Listen(8080, 1)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		conn, err := l.Accept(2 * time.Second)
		if err != nil {
			errCh <- err
			return
		}
		_, err = conn.Write(want)
		conn.Close()
		errCh <- err
	}()
	conn, err := stacks[0].Connect(stacks[1].Addr(), 8080, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	buf := make([]byte, 8192)
	for {
		n, err := conn.ReadDeadline(buf, time.Now().Add(5*time.Second))
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got.Len(), err)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", got.Len(), size)
	}
}

func TestTCPBulkTransferWithLoss(t *testing.T) {
	hub, stacks := testNet(t, 2)
	const size = 32 * 1024
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i * 7)
	}
	l, err := stacks[1].Listen(8080, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Serve every accepted connection (connect retries below may
		// produce more than one).
		for {
			conn, err := l.Accept(60 * time.Second)
			if err != nil {
				return
			}
			go func(c *TCB) {
				c.Write(want)
				c.Close()
			}(conn)
		}
	}()
	// Retry the connect: under the race detector with many packages
	// sharing the machine, one 15s attempt can starve.
	var conn *TCB
	for attempt := 0; attempt < 3; attempt++ {
		conn, err = stacks[0].Connect(stacks[1].Addr(), 8080, 15*time.Second)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	// Drop 15% of frames only once data is flowing, so the handshake
	// and the final FIN exchange stay deterministic.
	hub.SetLoss(15, 99)
	defer hub.SetLoss(0, 0)
	var got bytes.Buffer
	buf := make([]byte, 8192)
	deadline := time.Now().Add(30 * time.Second)
	for got.Len() < size {
		n, err := conn.ReadDeadline(buf, deadline)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got.Len(), err)
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("lossy transfer corrupted: got %d bytes, want %d", got.Len(), size)
	}
}

func TestTCPGracefulCloseBothDirections(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, _ := stacks[1].Listen(7, 1)
	done := make(chan *TCB, 1)
	go func() {
		conn, err := l.Accept(2 * time.Second)
		if err != nil {
			done <- nil
			return
		}
		// Read until EOF, then close our side.
		buf := make([]byte, 64)
		for {
			_, err := conn.ReadDeadline(buf, time.Now().Add(2*time.Second))
			if err != nil {
				break
			}
		}
		conn.Close()
		done <- conn
	}()
	conn, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("bye"))
	conn.Close()
	// We should observe the peer's FIN as EOF.
	buf := make([]byte, 16)
	if _, err := conn.ReadDeadline(buf, time.Now().Add(2*time.Second)); err != io.EOF {
		t.Errorf("read after close = %v, want EOF", err)
	}
	srvConn := <-done
	if srvConn == nil {
		t.Fatal("server accept failed")
	}
	if err := conn.WaitClosed(3 * time.Second); err != nil {
		t.Errorf("client close: %v (state %s)", err, conn.State())
	}
	if err := srvConn.WaitClosed(3 * time.Second); err != nil {
		t.Errorf("server close: %v (state %s)", err, srvConn.State())
	}
}

func TestTCPWriteAfterClose(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, _ := stacks[1].Listen(7, 1)
	go l.Accept(2 * time.Second)
	conn, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Write([]byte("late")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestTCPBacklogRefusesExcess(t *testing.T) {
	_, stacks := testNet(t, 2)
	// backlog 1, never accepted: second handshake may complete or be
	// refused by backlog accounting; third must be refused.
	if _, err := stacks[1].Listen(7, 1); err != nil {
		t.Fatal(err)
	}
	first, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatalf("first connect: %v", err)
	}
	defer first.Close()
	if _, err := stacks[0].Connect(stacks[1].Addr(), 7, 500*time.Millisecond); err == nil {
		t.Error("connect beyond backlog succeeded")
	}
}

func TestListenOneBecomesConnection(t *testing.T) {
	_, stacks := testNet(t, 2)
	sock, err := stacks[1].ListenOne(2000)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := sock.WaitEstablished(2 * time.Second); err != nil {
			return
		}
		buf := make([]byte, 64)
		n, err := sock.ReadDeadline(buf, time.Now().Add(2*time.Second))
		if err != nil {
			return
		}
		sock.Write(bytes.ToUpper(buf[:n]))
	}()
	conn, err := stacks[0].Connect(stacks[1].Addr(), 2000, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("shout"))
	buf := make([]byte, 64)
	n, err := conn.ReadDeadline(buf, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "SHOUT" {
		t.Errorf("got %q", buf[:n])
	}
}

func TestListenOneRefusesWhenExhausted(t *testing.T) {
	_, stacks := testNet(t, 2)
	sock, err := stacks[1].ListenOne(2000)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := stacks[0].Connect(stacks[1].Addr(), 2000, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := sock.WaitEstablished(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No listening socket remains: next SYN must be refused quickly.
	if _, err := stacks[0].Connect(stacks[1].Addr(), 2000, time.Second); err == nil {
		t.Error("connect with no listening socket succeeded")
	}
}

func TestListenOneMultipleSlots(t *testing.T) {
	_, stacks := testNet(t, 2)
	var socks []*TCB
	for i := 0; i < 3; i++ {
		sk, err := stacks[1].ListenOne(2000)
		if err != nil {
			t.Fatal(err)
		}
		socks = append(socks, sk)
	}
	var conns []*TCB
	for i := 0; i < 3; i++ {
		c, err := stacks[0].Connect(stacks[1].Addr(), 2000, 2*time.Second)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	for i, sk := range socks {
		if err := sk.WaitEstablished(2 * time.Second); err != nil {
			t.Errorf("slot %d not established: %v", i, err)
		}
	}
	for _, c := range conns {
		c.Close()
	}
}

func TestTCPSimultaneousConnections(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, _ := stacks[1].Listen(7, 8)
	go func() {
		for {
			conn, err := l.Accept(2 * time.Second)
			if err != nil {
				return
			}
			go func(c *TCB) {
				buf := make([]byte, 64)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(2*time.Second))
					if err != nil {
						c.Close()
						return
					}
					c.Write(buf[:n])
				}
			}(conn)
		}
	}()
	const clients = 6
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(id byte) {
			conn, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := []byte{'c', id}
			if _, err := conn.Write(msg); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 8)
			n, err := conn.ReadDeadline(buf, time.Now().Add(2*time.Second))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf[:n], msg) {
				errs <- io.ErrUnexpectedEOF
				return
			}
			errs <- nil
		}(byte(i))
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Errorf("client: %v", err)
		}
	}
}

func TestStackCloseAbortsConnections(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, _ := stacks[1].Listen(7, 1)
	go l.Accept(2 * time.Second)
	conn, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	stacks[0].Close()
	buf := make([]byte, 8)
	if _, err := conn.ReadDeadline(buf, time.Now().Add(time.Second)); err == nil {
		t.Error("read on closed stack succeeded")
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, _ := stacks[1].Listen(7, 16)
	go func() {
		for {
			if _, err := l.Accept(time.Second); err != nil {
				return
			}
		}
	}()
	seen := map[uint16]bool{}
	for i := 0; i < 5; i++ {
		c, err := stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.LocalPort()] {
			t.Errorf("ephemeral port %d reused while alive", c.LocalPort())
		}
		seen[c.LocalPort()] = true
		defer c.Close()
	}
}

func TestSeqComparisonWraps(t *testing.T) {
	if !seqLT(0xfffffff0, 0x10) {
		t.Error("seqLT should handle wraparound")
	}
	if seqLT(0x10, 0xfffffff0) {
		t.Error("seqLT inverted at wraparound")
	}
	if !seqLEQ(5, 5) {
		t.Error("seqLEQ not reflexive")
	}
}

// TestOutOfOrderReassembly injects data segments in scrambled order
// directly into the state machine and checks the receive stream comes
// out contiguous without waiting for retransmission.
func TestOutOfOrderReassembly(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, err := stacks[1].Listen(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	acceptedCh := make(chan *TCB, 1)
	go func() {
		c, err := l.Accept(5 * time.Second)
		if err != nil {
			acceptedCh <- nil
			return
		}
		acceptedCh <- c
	}()
	cli, err := stacks[0].Connect(stacks[1].Addr(), 7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-acceptedCh
	if srv == nil {
		t.Fatal("accept failed")
	}
	// Build three in-order segments but deliver 3,2,1.
	srv.mu.Lock()
	base := srv.rcvNxt
	srcPort := srv.remotePort
	dstPort := srv.localPort
	srv.mu.Unlock()
	seg := func(off uint32, payload string) tcpSegment {
		return tcpSegment{srcPort: srcPort, dstPort: dstPort,
			seq: base + off, ack: 0, flags: flagACK, window: 0xffff,
			payload: []byte(payload)}
	}
	srv.handleSegment(seg(8, "charlie!"))
	srv.handleSegment(seg(4, "bob!"))
	if srv.Avail() != 0 {
		t.Fatalf("data delivered before gap filled: %d bytes", srv.Avail())
	}
	srv.handleSegment(seg(0, "alf!"))
	buf := make([]byte, 32)
	var got []byte
	for len(got) < 16 {
		n, err := srv.ReadDeadline(buf, time.Now().Add(2*time.Second))
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "alf!bob!charlie!" {
		t.Errorf("reassembled = %q", got)
	}
}

// TestOOOBounded: a flood of far-future segments must not balloon the
// reassembly buffer.
func TestOOOBounded(t *testing.T) {
	_, stacks := testNet(t, 2)
	l, _ := stacks[1].Listen(7, 1)
	acceptedCh := make(chan *TCB, 1)
	go func() {
		c, _ := l.Accept(5 * time.Second)
		acceptedCh <- c
	}()
	cli, err := stacks[0].Connect(stacks[1].Addr(), 7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-acceptedCh
	if srv == nil {
		t.Fatal("accept failed")
	}
	srv.mu.Lock()
	base := srv.rcvNxt
	srcPort := srv.remotePort
	dstPort := srv.localPort
	srv.mu.Unlock()
	for i := uint32(1); i <= 500; i++ {
		srv.handleSegment(tcpSegment{srcPort: srcPort, dstPort: dstPort,
			seq: base + i*10, flags: flagACK, window: 0xffff,
			payload: []byte("xxxxxxxxxx")})
	}
	srv.mu.Lock()
	n := len(srv.ooo)
	srv.mu.Unlock()
	if n > maxOOOSegments {
		t.Errorf("ooo buffer holds %d segments, cap %d", n, maxOOOSegments)
	}
}
