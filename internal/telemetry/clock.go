package telemetry

import (
	"sync/atomic"
	"time"
)

// Clock is the time axis instruments stamp against: Now returns
// nanoseconds since the clock's epoch. Two implementations cover the
// repo's needs — NewWallClock for real time (netsim latencies are real
// sleeps, so wall time doubles as simulated time) and ManualClock for
// fully deterministic axes (the loadgen virtual-time model, replayed
// Rabbit cycle counts). Trace.SetClock installs one on a trace.
type Clock interface {
	Now() uint64
}

// wallClock reads wall time relative to its creation.
type wallClock struct {
	epoch time.Time
}

// NewWallClock returns a Clock reading wall-clock nanoseconds since
// the call.
func NewWallClock() Clock {
	return &wallClock{epoch: time.Now()}
}

func (c *wallClock) Now() uint64 { return uint64(time.Since(c.epoch)) }

// ManualClock is an explicitly advanced Clock for deterministic runs:
// time moves only when the owner says so, so two replays of the same
// schedule stamp identical times. The zero value reads zero and is
// ready to use. Safe for concurrent use.
type ManualClock struct {
	v atomic.Uint64
}

// NewManualClock returns a ManualClock reading start.
func NewManualClock(start uint64) *ManualClock {
	c := &ManualClock{}
	c.v.Store(start)
	return c
}

// Now returns the current manual reading.
func (c *ManualClock) Now() uint64 { return c.v.Load() }

// Set moves the clock to t (monotonicity is the caller's contract).
func (c *ManualClock) Set(t uint64) { c.v.Store(t) }

// Advance moves the clock forward by d nanoseconds and returns the new
// reading.
func (c *ManualClock) Advance(d uint64) uint64 { return c.v.Add(d) }

// SetClock installs c as the trace's time source (see SetNow). A nil
// clock is ignored.
func (t *Trace) SetClock(c Clock) {
	if c == nil {
		return
	}
	t.SetNow(c.Now)
}
