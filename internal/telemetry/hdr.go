package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// HDRHistogram is a high-dynamic-range latency recorder in the style
// of Gil Tene's HdrHistogram: values keep their top hdrSubBits
// significant bits, so every bucket's relative width is at most
// 1/2^hdrSubBits (~1.6%) across the full uint64 range, and quantiles
// (p50/p95/p99/p999) read back with that bounded error — unlike the
// log2 Histogram, whose buckets are a full power of two wide. Memory
// is a fixed ~30 KB of atomic counters; Observe is lock-free and
// allocation-free, so the recorder can sit on a load generator's
// per-request path. All methods are nil-safe, matching the package's
// other instruments.
//
// Determinism: the bucket an observation lands in, and therefore every
// quantile, depends only on the observed values — two runs that
// observe the same multiset of values report identical buckets and
// percentiles, which is what lets a seeded virtual-time load run
// assert replayability on its latency table.
type HDRHistogram struct {
	counts [hdrBucketCount]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64 // stores ^value so zero means "unset"
	max    atomic.Uint64
}

const (
	// hdrSubBits is the precision: values are quantized to their top
	// 1+hdrSubBits significant bits.
	hdrSubBits = 6
	// hdrSubBuckets is the number of linear sub-buckets per power of two.
	hdrSubBuckets = 1 << hdrSubBits
	// hdrBucketCount covers values 0..2^64-1: an exact region for
	// v < hdrSubBuckets plus 64-hdrSubBits log2 ranges of hdrSubBuckets
	// linear sub-buckets each.
	hdrBucketCount = (65 - hdrSubBits) * hdrSubBuckets
)

// NewHDRHistogram returns an empty recorder.
func NewHDRHistogram() *HDRHistogram { return &HDRHistogram{} }

// hdrIndex maps a value to its bucket.
func hdrIndex(v uint64) int {
	if v < hdrSubBuckets {
		return int(v) // exact region
	}
	top := bits.Len64(v) // >= hdrSubBits+1
	sub := (v >> (top - 1 - hdrSubBits)) & (hdrSubBuckets - 1)
	return (top-hdrSubBits)*hdrSubBuckets + int(sub)
}

// hdrHigh returns the largest value bucket i holds — the conservative
// (upper-bound) representative quantiles report.
func hdrHigh(i int) uint64 {
	if i < hdrSubBuckets {
		return uint64(i)
	}
	top := i/hdrSubBuckets + hdrSubBits
	sub := uint64(i % hdrSubBuckets)
	width := top - 1 - hdrSubBits
	low := uint64(1)<<(top-1) | sub<<width
	return low + (uint64(1)<<width - 1)
}

// Observe records one value. Lock-free; safe on a nil receiver.
func (h *HDRHistogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[hdrIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	// min stores ^value so the zero initial state reads as MaxUint64.
	for {
		cur := h.min.Load()
		if v >= ^cur {
			break
		}
		if h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *HDRHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *HDRHistogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation (0 when empty).
func (h *HDRHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Min returns the smallest observation (0 when empty).
func (h *HDRHistogram) Min() uint64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return ^h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *HDRHistogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket where the cumulative count first reaches ceil(q*n),
// clamped to the observed max so p100 is exact. Empty histograms read
// zero.
func (h *HDRHistogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := uint64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := hdrHigh(i)
			if m := h.Max(); v > m {
				v = m
			}
			return v
		}
	}
	return h.Max()
}

// HDRBucket is one non-empty bucket in a snapshot: Count observations
// whose quantized upper bound is High.
type HDRBucket struct {
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order —
// the replayable shape determinism tests compare, and the compact form
// reports embed.
func (h *HDRHistogram) Buckets() []HDRBucket {
	if h == nil {
		return nil
	}
	var out []HDRBucket
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			out = append(out, HDRBucket{High: hdrHigh(i), Count: c})
		}
	}
	return out
}

// WriteText renders a percentile table (one line per requested
// quantile) for human consumption.
func (h *HDRHistogram) WriteText(w io.Writer, unit string, div float64) error {
	qs := []struct {
		label string
		q     float64
	}{
		{"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95},
		{"p99", 0.99}, {"p999", 0.999}, {"max", 1.0},
	}
	for _, e := range qs {
		if _, err := fmt.Fprintf(w, "  %-5s %10.3f %s\n",
			e.label, float64(h.Quantile(e.q))/div, unit); err != nil {
			return err
		}
	}
	return nil
}
