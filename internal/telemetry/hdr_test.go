package telemetry

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestHDRNilSafety(t *testing.T) {
	var h *HDRHistogram
	h.Observe(42)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Buckets() != nil {
		t.Error("nil HDRHistogram not inert")
	}
}

func TestHDRExactRegion(t *testing.T) {
	h := NewHDRHistogram()
	for v := uint64(0); v < hdrSubBuckets; v++ {
		h.Observe(v)
	}
	// Below hdrSubBuckets every value has its own bucket: quantiles are
	// exact order statistics.
	if got := h.Quantile(0.5); got != 31 {
		t.Errorf("p50 of 0..63 = %d, want 31", got)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Count() != hdrSubBuckets {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHDRRelativeError(t *testing.T) {
	// Large values must come back within 1/2^hdrSubBits relative error.
	vals := []uint64{100, 1000, 12345, 1 << 20, 3<<30 + 7, 1 << 40}
	for _, v := range vals {
		h := NewHDRHistogram()
		h.Observe(v)
		got := h.Quantile(0.5)
		relErr := math.Abs(float64(got)-float64(v)) / float64(v)
		if relErr > 1.0/hdrSubBuckets {
			t.Errorf("value %d read back as %d (rel err %.4f)", v, got, relErr)
		}
		if got < v {
			t.Errorf("bucket upper bound %d below observed %d", got, v)
		}
	}
}

func TestHDRIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [low, high] contains it;
	// sweep powers of two and neighbors across the range.
	for shift := 0; shift < 64; shift++ {
		for _, delta := range []int64{-1, 0, 1} {
			v := uint64(1)<<shift + uint64(delta)
			if delta < 0 && v > uint64(1)<<shift {
				continue // underflow at shift 0
			}
			i := hdrIndex(v)
			if i < 0 || i >= hdrBucketCount {
				t.Fatalf("index(%d) = %d out of range", v, i)
			}
			if high := hdrHigh(i); high < v {
				t.Errorf("value %d above its bucket high %d", v, high)
			}
		}
	}
}

func TestHDRQuantiles(t *testing.T) {
	h := NewHDRHistogram()
	// 1000 observations of 1ms, 10 of 100ms: p99 must stay at the fast
	// mode, p999 must see the slow tail.
	for i := 0; i < 1000; i++ {
		h.Observe(1_000_000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000_000)
	}
	p99 := h.Quantile(0.99)
	if p99 > 2_000_000 {
		t.Errorf("p99 = %d, want ~1ms", p99)
	}
	p999 := h.Quantile(0.999)
	if p999 < 50_000_000 {
		t.Errorf("p999 = %d, want ~100ms tail", p999)
	}
	if h.Quantile(1.0) != h.Max() {
		t.Errorf("p100 %d != max %d", h.Quantile(1.0), h.Max())
	}
}

func TestHDRDeterministicBuckets(t *testing.T) {
	mk := func() *HDRHistogram {
		h := NewHDRHistogram()
		v := uint64(1)
		for i := 0; i < 10000; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			h.Observe(v % 50_000_000)
		}
		return h
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Buckets(), b.Buckets()) {
		t.Error("same observation multiset produced different buckets")
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%v: %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestHDRConcurrentObserve(t *testing.T) {
	h := NewHDRHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 0 || h.Max() != workers*per-1 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(100)
	if c.Now() != 100 {
		t.Errorf("start = %d", c.Now())
	}
	if c.Advance(50) != 150 || c.Now() != 150 {
		t.Error("advance broken")
	}
	c.Set(1000)
	if c.Now() != 1000 {
		t.Error("set broken")
	}
	tr := NewTrace(4)
	tr.SetClock(c)
	tr.Emit("test", "ev")
	if ev := tr.Events(); len(ev) != 1 || ev[0].T != 1000 {
		t.Errorf("trace on manual clock: %+v", tr.Events())
	}
}
