// Package telemetry is the repo's dependency-free observability layer:
// a metrics registry (atomic counters, gauges, log2-bucket histograms)
// and a bounded ring-buffer trace of structured events stamped on one
// simulated-time axis (see trace.go). Every layer of the reproduction —
// the netsim wire, the tcpip stack, the issl secure layer, the
// redirector service, and the Rabbit cycle profiler — reports here, so
// an experiment can be *explained* (where the cycles, retransmissions
// and faults went) and not merely run.
//
// All metric handles are nil-safe: a nil *Counter (from a nil
// *Registry) accepts Add calls and reads zero, so instrumented code
// never branches on whether telemetry is wired up.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter atomically. A nil counter reads zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the gauge atomically. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the fixed bucket count: bucket 0 holds the value
// 0 and bucket i (1..64) holds values v with bits.Len64(v) == i, i.e.
// v in [2^(i-1), 2^i - 1]. Log2 buckets keep Observe allocation-free
// and O(1) with no configuration, at the price of coarse (power of
// two) resolution — the right trade for cycle counts and RTTs.
const HistogramBuckets = 65

// Histogram counts observations in fixed log2 buckets.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketLow returns the smallest value bucket i holds.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the largest value bucket i holds.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<i - 1
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() [HistogramBuckets]uint64 {
	var out [HistogramBuckets]uint64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry names and owns metrics. Get-or-create accessors hand out
// stable pointers, so hot paths resolve a metric once and then update
// it lock-free. A nil *Registry hands out nil metrics, which absorb
// updates silently — instrumentation needs no nil checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is one metric's point-in-time reading.
type Snapshot struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value carries the counter value or gauge value; for histograms
	// it is the observation count (Sum/Mean carry the rest).
	Value int64
	Sum   uint64
	Mean  float64
}

// Snapshot returns every metric's reading, sorted by (kind, name), so
// dumps are deterministic.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Snapshot{Name: name, Kind: "counter", Value: int64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Snapshot{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Snapshot{Name: name, Kind: "histogram",
			Value: int64(h.Count()), Sum: h.Sum(), Mean: h.Mean()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteText renders a human-readable metrics dump.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		switch s.Kind {
		case "histogram":
			_, err = fmt.Fprintf(w, "%-12s %-40s count=%d sum=%d mean=%.1f\n",
				s.Kind, s.Name, s.Value, s.Sum, s.Mean)
		default:
			_, err = fmt.Fprintf(w, "%-12s %-40s %d\n", s.Kind, s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one JSON object per line (JSONL),
// matching the trace sink format so both can share a consumer.
func (r *Registry) WriteJSON(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		switch s.Kind {
		case "histogram":
			_, err = fmt.Fprintf(w, `{"kind":%s,"name":%s,"count":%d,"sum":%d,"mean":%g}`+"\n",
				jsonString(s.Kind), jsonString(s.Name), s.Value, s.Sum, s.Mean)
		default:
			_, err = fmt.Fprintf(w, `{"kind":%s,"name":%s,"value":%d}`+"\n",
				jsonString(s.Kind), jsonString(s.Name), s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
