package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	c.Add(5) // must not panic
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("nil histogram not zero")
	}
	var tr *Trace
	tr.Emit("l", "n", "k", 1)
	if tr.Len() != 0 || tr.Now() != 0 || tr.Events() != nil {
		t.Fatalf("nil trace not inert")
	}
}

func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatalf("Counter(a) returned distinct pointers")
	}
	c1.Add(2)
	c2.Inc()
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter a = %d, want 3", got)
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatalf("Gauge(g) returned distinct pointers")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatalf("Histogram(h) returned distinct pointers")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

// TestHistogramBucketBoundaries pins the log2 bucketing scheme: 0 goes
// to bucket 0, and each power-of-two boundary starts a new bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1023, 10}, {1024, 11},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket low/high bounds must tile the uint64 range exactly.
	if BucketLow(0) != 0 || BucketHigh(0) != 0 {
		t.Fatalf("bucket 0 bounds = [%d,%d], want [0,0]", BucketLow(0), BucketHigh(0))
	}
	for i := 1; i < HistogramBuckets; i++ {
		if BucketLow(i) != BucketHigh(i-1)+1 {
			t.Fatalf("bucket %d low %d does not follow bucket %d high %d",
				i, BucketLow(i), i-1, BucketHigh(i-1))
		}
		if BucketIndex(BucketLow(i)) != i || BucketIndex(BucketHigh(i)) != i {
			t.Fatalf("bucket %d bounds [%d,%d] do not map back to bucket %d",
				i, BucketLow(i), BucketHigh(i), i)
		}
	}
	if BucketHigh(64) != math.MaxUint64 {
		t.Fatalf("top bucket high = %d, want MaxUint64", BucketHigh(64))
	}

	h := &Histogram{}
	for _, c := range cases {
		h.Observe(c.v)
	}
	b := h.Buckets()
	if b[0] != 1 || b[2] != 2 || b[3] != 2 || b[64] != 1 {
		t.Fatalf("bucket counts wrong: %v", b[:5])
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramSumMean(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{10, 20, 30} {
		h.Observe(v)
	}
	if h.Sum() != 60 {
		t.Fatalf("Sum = %d, want 60", h.Sum())
	}
	if h.Mean() != 20 {
		t.Fatalf("Mean = %g, want 20", h.Mean())
	}
}

// TestTraceWraparound pins the ring contract: events beyond capacity
// evict the oldest, Emit never blocks, and Events stays oldest-first.
func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	tr.SetNow(func() uint64 { return 42 })
	for i := 0; i < 10; i++ {
		tr.Emit("test", "ev", "i", i)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Evicted() != 6 {
		t.Fatalf("Evicted = %d, want 6", tr.Evicted())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for j, ev := range evs {
		want := 6 + j // oldest surviving is i=6
		if got := ev.Attrs[0].Value.(int); got != want {
			t.Fatalf("event %d has i=%d, want %d", j, got, want)
		}
		if ev.T != 42 {
			t.Fatalf("event %d T=%d, want 42", j, ev.T)
		}
	}
}

func TestTraceClockMonotoneOrder(t *testing.T) {
	tr := NewTrace(16)
	var clk uint64
	tr.SetNow(func() uint64 { clk += 100; return clk })
	tr.Emit("a", "first")
	mid := tr.Now()
	tr.Emit("a", "second")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].T >= mid || evs[1].T <= mid {
		t.Fatalf("timestamps not ordered around Now(): %d, %d, mid %d",
			evs[0].T, evs[1].T, mid)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.SetNow(func() uint64 { return 7 })
	tr.Emit("issl", "hs.phase", "phase", "hello", "dur", uint64(123))
	tr.Emit("tcp", `quote"layer`, "n", 1.5)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0]["layer"] != "issl" || lines[0]["phase"] != "hello" || lines[0]["dur"] != float64(123) {
		t.Fatalf("first line wrong: %v", lines[0])
	}
	if lines[1]["name"] != `quote"layer` {
		t.Fatalf("JSON escaping broken: %v", lines[1])
	}
}

func TestTraceWriteText(t *testing.T) {
	tr := NewTrace(8)
	tr.SetNow(func() uint64 { return 1500 })
	tr.Emit("netsim", "fault.loss", "mac", "02:00:0a:00:00:01")
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"netsim", "fault.loss", "mac=02:00:0a:00:00:01", "1.500us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Gauge("z").Set(-4)
	r.Histogram("h").Observe(100)
	snap := r.Snapshot()
	var got []string
	for _, s := range snap {
		got = append(got, s.Kind+"/"+s.Name)
	}
	want := []string{"counter/a", "counter/b", "gauge/z", "histogram/h"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("snapshot order = %v, want %v", got, want)
	}
	if snap[2].Value != -4 {
		t.Fatalf("gauge snapshot = %d, want -4", snap[2].Value)
	}

	var text, jsonl bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "counter") {
		t.Fatalf("text dump missing counters:\n%s", text.String())
	}
	sc := bufio.NewScanner(&jsonl)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("metrics JSONL line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("metrics JSONL lines = %d, want 4", n)
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Emit("t", "e", "id", id, "j", j)
			}
		}(i)
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tr.Len())
	}
	if tr.Evicted() != 8*200-64 {
		t.Fatalf("Evicted = %d, want %d", tr.Evicted(), 8*200-64)
	}
}
