package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one key/value pair on a trace event. Values are kept as
// interface{} so emitters can attach ints, strings, durations, etc.;
// sinks render them with %v / JSON.
type Attr struct {
	Key   string
	Value any
}

// Event is one structured trace record. T is the simulated-time stamp
// in nanoseconds on the trace's time axis (see Trace). Layer names the
// emitting subsystem ("netsim", "tcp", "issl", "redirector", ...) and
// Name the event kind within it ("fault.loss", "retransmit",
// "hs.phase", ...).
type Event struct {
	T     uint64
	Layer string
	Name  string
	Attrs []Attr
}

// Trace is a bounded ring buffer of Events. When full, Emit evicts the
// oldest event — it never blocks and never grows, so it is safe to
// leave attached in soak tests. All methods are safe for concurrent
// use and nil-safe: a nil *Trace absorbs Emit calls, so instrumented
// code never branches on whether tracing is wired up.
//
// Time axis: every event is stamped by the trace's clock, nanoseconds
// since an epoch. The default clock is wall time since NewTrace, which
// under netsim (whose latencies are real sleeps) doubles as simulated
// time; SetNow installs a different clock — e.g. the Rabbit CPU cycle
// counter scaled to ns — so hardware-level and network-level events
// share one axis.
type Trace struct {
	mu      sync.Mutex
	now     func() uint64
	buf     []Event
	start   int // index of oldest event
	n       int // number of valid events
	evicted uint64
}

// NewTrace creates a trace holding at most capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	epoch := time.Now()
	return &Trace{
		now: func() uint64 { return uint64(time.Since(epoch)) },
		buf: make([]Event, 0, capacity),
	}
}

// SetNow replaces the trace clock. Call before emitting; events
// already recorded keep their old stamps.
func (t *Trace) SetNow(now func() uint64) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// Now returns the current reading of the trace clock, so callers can
// measure durations on the same axis events are stamped with. A nil
// trace reads zero.
func (t *Trace) Now() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	v := t.now()
	t.mu.Unlock()
	return v
}

// Emit records one event, evicting the oldest if the ring is full.
// kv is alternating key, value pairs; a trailing odd key gets a nil
// value. Safe on a nil receiver.
func (t *Trace) Emit(layer, name string, kv ...any) {
	if t == nil {
		return
	}
	var attrs []Attr
	if len(kv) > 0 {
		attrs = make([]Attr, 0, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			key, _ := kv[i].(string)
			var val any
			if i+1 < len(kv) {
				val = kv[i+1]
			}
			attrs = append(attrs, Attr{Key: key, Value: val})
		}
	}
	t.mu.Lock()
	ev := Event{T: t.now(), Layer: layer, Name: name, Attrs: attrs}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
		t.evicted++
	}
	if t.n < cap(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Evicted returns how many events were dropped to make room.
func (t *Trace) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Events returns the buffered events oldest-first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// WriteText renders events oldest-first, one per line, with the
// sim-time stamp in microseconds.
func (t *Trace) WriteText(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, "%12.3fus %-10s %-20s", float64(ev.T)/1e3, ev.Layer, ev.Name); err != nil {
			return err
		}
		for _, a := range ev.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%v", a.Key, a.Value); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders events oldest-first as one JSON object per line:
// {"t":<ns>,"layer":...,"name":...,<attr keys in emit order>}.
// Attribute order is preserved, so the output is deterministic for a
// deterministic run.
func (t *Trace) WriteJSONL(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, `{"t":%d,"layer":%s,"name":%s`,
			ev.T, jsonString(ev.Layer), jsonString(ev.Name)); err != nil {
			return err
		}
		for _, a := range ev.Attrs {
			vb, err := json.Marshal(a.Value)
			if err != nil {
				vb = []byte(jsonString(fmt.Sprint(a.Value)))
			}
			if _, err := fmt.Fprintf(w, ",%s:%s", jsonString(a.Key), vb); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	return nil
}

// jsonString quotes s as a JSON string.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}
