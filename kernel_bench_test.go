package repro

// Host-side crypto kernel benchmarks — the CI perf regression gate.
// Every BenchmarkKernel* here times one of the hot-path kernels the
// perf rewrite touched (T-table AES-CBC, unrolled SHA-1, streaming
// HMAC, Montgomery/CRT RSA, the issl record path) and reports through
// record(), so `-benchjson` captures them next to the paper
// experiments. CI runs them with -benchtime=1x and diffs the result
// against the committed BENCH_baseline.json via cmd/benchdiff; each
// op is sized to take hundreds of microseconds so a single iteration
// is still a stable measurement.

import (
	"net"
	"testing"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/bignum"
	"repro/internal/crypto/bignum32"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
	"repro/internal/issl"
)

const kernelBufLen = 64 * 1024

func kernelBuf() []byte {
	buf := make([]byte, kernelBufLen)
	prng.NewXorshift(0xBEEF).Fill(buf)
	return buf
}

// BenchmarkKernelAESCBCEncrypt drives the whole-buffer in-place CBC
// fast path over 64 KiB per op — the shape of a large issl record
// flush.
func BenchmarkKernelAESCBCEncrypt(b *testing.B) {
	c, err := aes.NewAES(kernelBuf()[:16])
	if err != nil {
		b.Fatal(err)
	}
	buf := kernelBuf()
	iv := make([]byte, 16)
	c.EncryptCBCInPlace(iv, buf) // warm caches; 1x CI runs time steady state
	b.SetBytes(kernelBufLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncryptCBCInPlace(iv, buf); err != nil {
			b.Fatal(err)
		}
	}
	record(b, nil)
}

// BenchmarkKernelAESCBCDecrypt is the receive-side mirror.
func BenchmarkKernelAESCBCDecrypt(b *testing.B) {
	c, err := aes.NewAES(kernelBuf()[:16])
	if err != nil {
		b.Fatal(err)
	}
	buf := kernelBuf()
	iv := make([]byte, 16)
	c.DecryptCBCInPlace(iv, buf) // warm caches
	b.SetBytes(kernelBufLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.DecryptCBCInPlace(iv, buf); err != nil {
			b.Fatal(err)
		}
	}
	record(b, nil)
}

// BenchmarkKernelSHA1 hashes 64 KiB per op through the unrolled
// compress.
func BenchmarkKernelSHA1(b *testing.B) {
	buf := kernelBuf()
	_ = sha1.Sum1(buf) // warm caches
	b.SetBytes(kernelBufLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sha1.Sum1(buf)
	}
	record(b, nil)
}

// BenchmarkKernelHMACSHA1 streams 64 KiB per op through a reused
// HMACState — the record-MAC shape, where the pad state is computed
// once and every record reuses it.
func BenchmarkKernelHMACSHA1(b *testing.B) {
	buf := kernelBuf()
	st := sha1.NewHMAC(buf[:20])
	var sum [sha1.Size]byte
	st.Write(buf) // warm caches
	st.SumInto(&sum)
	b.SetBytes(kernelBufLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		st.Write(buf)
		st.SumInto(&sum)
	}
	record(b, nil)
}

// BenchmarkKernelRSASign times a 512-bit private-key operation — the
// per-full-handshake cost — through the CRT + Montgomery path.
func BenchmarkKernelRSASign(b *testing.B) {
	key, err := rsa.GenerateKey(prng.NewXorshift(0xCAFE), 512)
	if err != nil {
		b.Fatal(err)
	}
	digest := kernelBuf()[:20]
	if _, err := key.SignRaw(digest); err != nil { // prime the lazy CRT precompute
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.SignRaw(digest); err != nil {
			b.Fatal(err)
		}
	}
	record(b, nil)
}

// BenchmarkKernelModExp1024 times one 1024-bit modular exponentiation
// (odd modulus, so the Montgomery path) in isolation.
func BenchmarkKernelModExp1024(b *testing.B) {
	buf := kernelBuf()
	x := bignum.FromBytes(buf[:128])
	e := bignum.FromBytes(buf[128:256])
	mb := append([]byte(nil), buf[256:384]...)
	mb[0] |= 0x80      // full width
	mb[len(mb)-1] |= 1 // odd
	m := bignum.FromBytes(mb)
	_ = x.ModExp(e, m) // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.ModExp(e, m)
	}
	record(b, nil)
}

// BenchmarkKernelModExp1024Limb32 is the same 1024-bit modexp on the
// retired 32-bit limb implementation (kept in-tree as the conformance
// oracle) — the denominator of the limb-width speedup the README
// reports.
func BenchmarkKernelModExp1024Limb32(b *testing.B) {
	buf := kernelBuf()
	x := bignum32.FromBytes(buf[:128])
	e := bignum32.FromBytes(buf[128:256])
	mb := append([]byte(nil), buf[256:384]...)
	mb[0] |= 0x80      // full width
	mb[len(mb)-1] |= 1 // odd
	m := bignum32.FromBytes(mb)
	_ = x.ModExp(e, m) // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.ModExp(e, m)
	}
	record(b, nil)
}

// BenchmarkKernelRSASignLimb32 replays the 512-bit CRT private-key
// operation (two half-width modexps + Garner recombination, the shape
// of rsa/crt.go) on 32-bit limbs. The rsa package itself runs on the
// 64-bit bignum; this benchmark keeps the before/after of the limb
// rewrite measurable at the exact op the handshake pays.
func BenchmarkKernelRSASignLimb32(b *testing.B) {
	key, err := rsa.GenerateKey(prng.NewXorshift(0xCAFE), 512)
	if err != nil {
		b.Fatal(err)
	}
	to32 := func(x bignum.Int) bignum32.Int {
		return bignum32.FromBytes(x.Bytes())
	}
	p, q, d := to32(key.P), to32(key.Q), to32(key.D)
	one := bignum32.One()
	dp := d.Mod(p.Sub(one))
	dq := d.Mod(q.Sub(one))
	qinv, ok := q.ModInverse(p)
	if !ok {
		b.Fatal("q not invertible mod p")
	}
	// The padded EMSA block SignRaw would exponentiate.
	em := make([]byte, 64)
	em[1] = 0x01
	for i := 2; i < 43; i++ {
		em[i] = 0xff
	}
	copy(em[44:], kernelBuf()[:20])
	c := bignum32.FromBytes(em)
	crtSign := func() bignum32.Int {
		m1 := c.ModExp(dp, p)
		m2 := c.ModExp(dq, q)
		h := m1.Add(p).Sub(m2.Mod(p)).ModMul(qinv, p)
		return m2.Add(h.Mul(q))
	}
	_ = crtSign() // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crtSign()
	}
	record(b, nil)
}

// BenchmarkKernelFullHandshake times one complete Unix-profile
// handshake — ClientHello through Finished, RSA key exchange included
// — over an in-process pipe. This is the per-connection setup cost the
// stampede scenario multiplies by N; the sign pool and the cached
// ServerHello prefix both move this number.
func BenchmarkKernelFullHandshake(b *testing.B) {
	key, err := rsa.GenerateKey(prng.NewXorshift(0xD00D), 512)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := key.SignRaw(kernelBuf()[:20]); err != nil { // prime the lazy CRT precompute
		b.Fatal(err)
	}
	srvCfg := issl.Config{Profile: issl.ProfileUnix, ServerKey: key}
	hp := issl.NewServerHelloPrefix(&srvCfg)
	handshake := func(i int) {
		ct, st := net.Pipe()
		done := make(chan error, 1)
		go func() {
			cfg := srvCfg
			cfg.HelloPrefix = hp
			cfg.Rand = prng.NewXorshift(uint64(2*i + 1))
			_, err := issl.BindServer(st, cfg)
			done <- err
		}()
		_, err := issl.BindClient(ct, issl.Config{Profile: issl.ProfileUnix,
			Rand: prng.NewXorshift(uint64(2*i + 2))})
		if err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		ct.Close()
		st.Close()
	}
	handshake(0) // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handshake(i + 1)
	}
	record(b, nil)
}

// BenchmarkKernelRecordPath pumps 16 KiB per op through an
// established issl connection pair — seal, wire, open, echo back.
// This is the end-to-end record path the zero-alloc rewrite targets.
func BenchmarkKernelRecordPath(b *testing.B) {
	key, err := rsa.GenerateKey(prng.NewXorshift(0xD00D), 512)
	if err != nil {
		b.Fatal(err)
	}
	ct, st := net.Pipe()
	done := make(chan error, 1)
	var server *issl.Conn
	go func() {
		var err error
		server, err = issl.BindServer(st, issl.Config{Profile: issl.ProfileUnix,
			ServerKey: key, Rand: prng.NewXorshift(11)})
		done <- err
	}()
	client, err := issl.BindClient(ct, issl.Config{Profile: issl.ProfileUnix,
		Rand: prng.NewXorshift(10)})
	if err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	const chunk = 16 * 1024
	payload := kernelBuf()[:chunk]
	sink := make([]byte, chunk)
	echoErr := make(chan error, 1)
	go func() {
		buf := make([]byte, chunk)
		for {
			n, err := server.Read(buf)
			if err != nil {
				echoErr <- err
				return
			}
			if _, err := server.Write(buf[:n]); err != nil {
				echoErr <- err
				return
			}
		}
	}()
	roundTrip := func() {
		if _, err := client.Write(payload); err != nil {
			b.Fatal(err)
		}
		for got := 0; got < chunk; {
			n, err := client.Read(sink[got:])
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
	roundTrip() // warm the pooled record buffers and per-conn scratch
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
	b.StopTimer()
	record(b, nil)
	// Tear down the raw pipe ends rather than issl Close: close-notify
	// over a synchronous net.Pipe would have both sides blocked writing
	// with nobody left reading.
	ct.Close()
	st.Close()
}
